// Chaos soak harness for online catalog evolution: concurrent readers vs a
// view mutator on one engine (snapshot isolation, run under TSan in CI), a
// crash-recovery sweep that truncates the catalog WAL at every byte offset
// and differential-checks the recovered engine, and graceful degradation at
// every WAL fault point.
//
// The default run is a few hundred milliseconds so plain ctest stays fast;
// set XVR_SOAK_MS (the CI soak job uses a few seconds) to stretch the
// concurrent phase.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/mutex.h"
#include "core/engine.h"
#include "storage/catalog_wal.h"
#include "xml/xml_parser.h"

namespace xvr {
namespace {

int SoakMillis() {
  const char* env = std::getenv("XVR_SOAK_MS");
  return env != nullptr ? std::atoi(env) : 250;
}

// A document with enough repetition that answering does real join work but
// tests stay fast.
XmlTree SoakDoc() {
  std::string xml = "<r>";
  for (int i = 0; i < 30; ++i) {
    switch (i % 3) {
      case 0:
        xml += "<s><p/><f/></s>";
        break;
      case 1:
        xml += "<s><p/></s>";
        break;
      default:
        xml += "<s><f/></s>";
        break;
    }
  }
  xml += "<t><u/></t><t><u/><u/></t></r>";
  auto parsed = ParseXml(xml);
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).value();
}

XmlTree TinyDoc() {
  auto parsed = ParseXml("<r><s><p/><q/></s><s><p/></s><t><u/></t></r>");
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).value();
}

TreePattern Parse(Engine& engine, const std::string& xpath) {
  auto r = engine.Parse(xpath);
  EXPECT_TRUE(r.ok()) << xpath << ": " << r.status();
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// Snapshot isolation under live traffic.

TEST(CatalogSoak, ConcurrentReadersUnderChurn) {
  Engine engine(SoakDoc());
  // Core views stay for the whole run, so every probe query remains
  // answerable no matter what the mutator is doing.
  ASSERT_TRUE(engine.AddView(Parse(engine, "/r/s/p")).ok());
  ASSERT_TRUE(engine.AddView(Parse(engine, "/r/s/f")).ok());
  ASSERT_TRUE(engine.AddView(Parse(engine, "/r/s")).ok());

  // Ground truth from the catalog-independent base strategy, computed
  // before any concurrency starts.
  const std::vector<std::string> probe_xpaths = {"/r/s[f]/p", "/r/s/p",
                                                 "/r/s/f", "/r/s[p]/f"};
  std::vector<TreePattern> probes;
  std::vector<std::vector<DeweyCode>> expected;
  for (const std::string& xpath : probe_xpaths) {
    probes.push_back(Parse(engine, xpath));
    auto truth =
        engine.AnswerQuery(probes.back(), AnswerStrategy::kBaseNodeIndex);
    ASSERT_TRUE(truth.ok()) << xpath << ": " << truth.status();
    expected.push_back(truth->codes);
  }

  constexpr AnswerStrategy kReaderStrategies[] = {
      AnswerStrategy::kHeuristicFiltered, AnswerStrategy::kMinimumFiltered,
      AnswerStrategy::kHeuristicSmallFragments};

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> mutations{0};
  std::atomic<int> mismatches{0};
  Mutex error_mu;
  std::string first_error;
  auto report = [&](const std::string& what) {
    mismatches.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(&error_mu);
    if (first_error.empty()) {
      first_error = what;
    }
  };

  constexpr int kReaders = 8;
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      uint64_t i = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t probe = i % probes.size();
        const AnswerStrategy strategy =
            kReaderStrategies[(i / probes.size()) % 3];
        auto answer = engine.AnswerQuery(probes[probe], strategy);
        if (!answer.ok()) {
          report("reader " + std::to_string(t) + " query " +
                 probe_xpaths[probe] + ": " + answer.status().ToString());
        } else if (answer->codes != expected[probe]) {
          report("reader " + std::to_string(t) + " query " +
                 probe_xpaths[probe] + ": wrong answer under churn");
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  // The mutator churns extra views — adding views can only widen the
  // planner's options, and removing these never makes a probe unanswerable.
  threads.emplace_back([&] {
    const std::vector<std::string> churn_xpaths = {"/r/s[p]/f", "/r/s[f]/p",
                                                   "/r/t/u", "/r/s[f]"};
    uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<int32_t> added;
      for (size_t i = 0; i < churn_xpaths.size(); ++i) {
        TreePattern pattern = Parse(engine, churn_xpaths[i]);
        const Result<int32_t> id = [&]() -> Result<int32_t> {
          switch ((round + i) % 3) {
            case 0:
              return engine.AddView(std::move(pattern));
            case 1:
              return engine.AddViewCodesOnly(std::move(pattern));
            default:
              return engine.AddViewPattern(std::move(pattern));
          }
        }();
        if (!id.ok()) {
          report("mutator add: " + id.status().ToString());
          continue;
        }
        added.push_back(*id);
      }
      for (const int32_t id : added) {
        const Status removed = engine.RemoveView(id);
        if (!removed.ok()) {
          report("mutator remove: " + removed.ToString());
        }
      }
      mutations.fetch_add(added.size() * 2, std::memory_order_relaxed);
      ++round;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(SoakMillis()));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(mismatches.load(), 0) << first_error;
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(mutations.load(), 0u);
  // The churn really moved the catalog, and it ended where it started:
  // only the three core views remain.
  EXPECT_GT(engine.catalog_version(), 3u);
  EXPECT_EQ(engine.num_views(), 3u);
}

TEST(CatalogSoak, PinnedSnapshotSurvivesMutation) {
  Engine engine(TinyDoc());
  auto id = engine.AddView(Parse(engine, "/r/s/p"));
  ASSERT_TRUE(id.ok());
  const CatalogRef pinned = engine.Catalog();
  ASSERT_TRUE(engine.RemoveView(*id).ok());
  // The live catalog moved on...
  EXPECT_EQ(engine.view(*id), nullptr);
  EXPECT_GT(engine.catalog_version(), pinned->version);
  // ...but the pinned snapshot still holds the view, pattern and fragments.
  EXPECT_NE(pinned->view(*id), nullptr);
  EXPECT_TRUE(pinned->fragments.HasView(*id));
  EXPECT_EQ(pinned->view_ids(), std::vector<int32_t>{*id});
}

// ---------------------------------------------------------------------------
// WAL format: round trip and torn tails.

TEST(CatalogWal, AppendReadAllRoundTrip) {
  const std::string path = ::testing::TempDir() + "xvr_wal_roundtrip.bin";
  std::remove(path.c_str());
  auto wal = CatalogWal::Open(path, /*last_seq=*/0);
  ASSERT_TRUE(wal.ok());
  auto s1 = (*wal)->Append(CatalogWalOp::kAddView, 0, "/r/s/p");
  auto s2 = (*wal)->Append(CatalogWalOp::kAddViewCodesOnly, 1, "/r/s/f");
  auto s3 = (*wal)->Append(CatalogWalOp::kRemoveView, 0, "");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  EXPECT_EQ(*s1, 1u);
  EXPECT_EQ(*s3, 3u);
  EXPECT_EQ((*wal)->last_seq(), 3u);

  auto records = CatalogWal::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].seq, 1u);
  EXPECT_EQ((*records)[0].op, CatalogWalOp::kAddView);
  EXPECT_EQ((*records)[0].view_id, 0);
  EXPECT_EQ((*records)[0].xpath, "/r/s/p");
  EXPECT_EQ((*records)[1].op, CatalogWalOp::kAddViewCodesOnly);
  EXPECT_EQ((*records)[2].op, CatalogWalOp::kRemoveView);
  EXPECT_TRUE((*records)[2].xpath.empty());
  std::remove(path.c_str());
}

TEST(CatalogWal, TornTailIsDroppedNotFatal) {
  const std::string path = ::testing::TempDir() + "xvr_wal_torn.bin";
  std::remove(path.c_str());
  auto wal = CatalogWal::Open(path, 0);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(CatalogWalOp::kAddView, 0, "/r/s/p").ok());
  ASSERT_TRUE((*wal)->Append(CatalogWalOp::kAddView, 1, "/r/s/f").ok());

  // Garbage after the last record: a crash mid-append.
  ASSERT_TRUE(AppendToFile(path, "\x07garbage").ok());
  auto records = CatalogWal::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);

  // Truncating into the second record loses exactly that record.
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  const std::string first =
      EncodeCatalogWalRecord(CatalogWalRecord{1, CatalogWalOp::kAddView, 0,
                                              "/r/s/p"});
  ASSERT_TRUE(
      WriteFileAtomic(path, bytes->substr(0, first.size() + 5)).ok());
  records = CatalogWal::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].xpath, "/r/s/p");
  std::remove(path.c_str());
}

TEST(CatalogWal, MissingFileIsAnEmptyLog) {
  auto records =
      CatalogWal::ReadAll(::testing::TempDir() + "xvr_wal_nonexistent.bin");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

// ---------------------------------------------------------------------------
// Crash recovery: image + WAL tail replay.

class CatalogRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test file names: ctest runs each test as its own process, in
    // parallel, so shared names would let tests clobber each other.
    const std::string test_name = ::testing::UnitTest::GetInstance()
                                      ->current_test_info()
                                      ->name();
    image_ = ::testing::TempDir() + "xvr_" + test_name + "_img.bin";
    wal_ = ::testing::TempDir() + "xvr_" + test_name + "_wal.bin";
    std::remove(image_.c_str());
    std::remove(wal_.c_str());
  }
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    std::remove(image_.c_str());
    std::remove(wal_.c_str());
  }

  // HV answers == BN answers for `xpath` on `engine` (the differential
  // oracle: base strategies never touch the catalog).
  static void ExpectDifferentialMatch(Engine& engine,
                                      const std::string& xpath) {
    const TreePattern q = Parse(engine, xpath);
    auto hv = engine.AnswerQuery(q, AnswerStrategy::kHeuristicFiltered);
    ASSERT_TRUE(hv.ok()) << xpath << ": " << hv.status();
    auto bn = engine.AnswerQuery(q, AnswerStrategy::kBaseNodeIndex);
    ASSERT_TRUE(bn.ok());
    EXPECT_EQ(hv->codes, bn->codes) << xpath;
  }

  std::string image_;
  std::string wal_;
};

TEST_F(CatalogRecoveryTest, WalReplayRecoversUnsavedMutations) {
  int32_t kept = -1, churned = -1, late = -1;
  {
    Engine engine(TinyDoc());
    ASSERT_TRUE(engine.EnableCatalogWal(wal_).ok());
    EXPECT_TRUE(engine.catalog_wal_enabled());
    auto id0 = engine.AddView(Parse(engine, "/r/s/p"));
    ASSERT_TRUE(id0.ok());
    kept = *id0;
    // SaveState checkpoints and truncates: these mutations live in the
    // image, not the log.
    ASSERT_TRUE(engine.SaveState(image_).ok());
    auto tail = ReadFileToString(wal_);
    ASSERT_TRUE(tail.ok());
    EXPECT_TRUE(tail->empty());

    // Mutations after the save exist only in the WAL.
    auto id1 = engine.AddView(Parse(engine, "/r/s/q"));
    ASSERT_TRUE(id1.ok());
    churned = *id1;
    auto id2 = engine.AddViewCodesOnly(Parse(engine, "/r/t/u"));
    ASSERT_TRUE(id2.ok());
    late = *id2;
    ASSERT_TRUE(engine.RemoveView(churned).ok());
    // Crash: the engine dies here without another SaveState.
  }

  auto recovered = Engine::LoadStateWithWal(image_, wal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  Engine& engine = **recovered;
  EXPECT_EQ(engine.view_ids(), (std::vector<int32_t>{kept, late}));
  EXPECT_EQ(engine.view(churned), nullptr);
  EXPECT_TRUE(engine.IsViewPartial(late));
  // Replay continues the sequence: the next mutation appends after the
  // replayed tail instead of reusing sequence numbers.
  EXPECT_EQ(engine.catalog_wal_last_seq(), 4u);
  auto next = engine.AddView(Parse(engine, "/r/s"));
  ASSERT_TRUE(next.ok());
  EXPECT_GT(*next, late);
  EXPECT_EQ(engine.catalog_wal_last_seq(), 5u);
  ExpectDifferentialMatch(engine, "/r/s/p");
  ExpectDifferentialMatch(engine, "/r/t/u");
}

TEST_F(CatalogRecoveryTest, TruncationSweepRecoversAPrefix) {
  // Mutation sequence whose every prefix we can predict.
  std::vector<std::vector<int32_t>> expected_after;  // index = #replayed
  {
    Engine engine(TinyDoc());
    ASSERT_TRUE(engine.SaveState(image_).ok());
    ASSERT_TRUE(engine.EnableCatalogWal(wal_).ok());
    expected_after.push_back(engine.view_ids());  // nothing replayed
    auto apply = [&](auto&& mutate) {
      ASSERT_TRUE(mutate());
      expected_after.push_back(engine.view_ids());
    };
    apply([&] { return engine.AddView(Parse(engine, "/r/s/p")).ok(); });
    apply([&] { return engine.AddView(Parse(engine, "/r/s/q")).ok(); });
    apply([&] {
      return engine.AddViewCodesOnly(Parse(engine, "/r/t/u")).ok();
    });
    apply([&] { return engine.RemoveView(1).ok(); });
    apply([&] { return engine.AddViewPattern(Parse(engine, "/r/s")).ok(); });
    apply([&] { return engine.RemoveView(0).ok(); });
  }

  auto full = ReadFileToString(wal_);
  ASSERT_TRUE(full.ok());
  // Per-record end offsets, from the encoding itself.
  auto records = CatalogWal::ReadAll(wal_);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), expected_after.size() - 1);
  std::vector<size_t> record_end;
  size_t offset = 0;
  for (const CatalogWalRecord& record : *records) {
    offset += EncodeCatalogWalRecord(record).size();
    record_end.push_back(offset);
  }
  ASSERT_EQ(offset, full->size());

  const std::string swept_wal = wal_ + ".sweep";
  for (size_t len = 0; len <= full->size(); ++len) {
    // "Crash" with only the first `len` bytes of the log durable.
    ASSERT_TRUE(WriteFileAtomic(swept_wal, full->substr(0, len)).ok());
    auto recovered = Engine::LoadStateWithWal(image_, swept_wal);
    ASSERT_TRUE(recovered.ok()) << "len=" << len << ": "
                                << recovered.status();
    // Exactly the complete records within `len` bytes replay: recovery is
    // always a prefix of the real mutation sequence, nothing else.
    size_t replayed = 0;
    while (replayed < record_end.size() && record_end[replayed] <= len) {
      ++replayed;
    }
    EXPECT_EQ((*recovered)->view_ids(), expected_after[replayed])
        << "len=" << len;
    EXPECT_TRUE((*recovered)->quarantined_view_ids().empty());
  }
  // The full log recovers the final state, and the recovered engine
  // answers correctly.
  ASSERT_TRUE(WriteFileAtomic(swept_wal, *full).ok());
  auto recovered = Engine::LoadStateWithWal(image_, swept_wal);
  ASSERT_TRUE(recovered.ok());
  ExpectDifferentialMatch(**recovered, "/r/t/u");
  std::remove(swept_wal.c_str());
}

TEST_F(CatalogRecoveryTest, SavedImageRoundTripsWithWalReplayOnTop) {
  // image(v0) + WAL(v1) -> recover -> save -> recover again: no mutation
  // applies twice, ids and answers are stable.
  {
    Engine engine(TinyDoc());
    ASSERT_TRUE(engine.AddView(Parse(engine, "/r/s/p")).ok());
    ASSERT_TRUE(engine.SaveState(image_).ok());
    ASSERT_TRUE(engine.EnableCatalogWal(wal_).ok());
    ASSERT_TRUE(engine.AddView(Parse(engine, "/r/t/u")).ok());
  }
  auto first = Engine::LoadStateWithWal(image_, wal_);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ((*first)->view_ids(), (std::vector<int32_t>{0, 1}));
  ASSERT_TRUE((*first)->SaveState(image_).ok());
  auto second = Engine::LoadStateWithWal(image_, wal_);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ((*second)->view_ids(), (std::vector<int32_t>{0, 1}));
  EXPECT_EQ((*second)->num_views(), 2u);
  ExpectDifferentialMatch(**second, "/r/s/p");
}

// ---------------------------------------------------------------------------
// WAL fault points (need -DXVR_FAULTS=ON; skip elsewhere).

class CatalogWalFaultTest : public CatalogRecoveryTest {
 protected:
  void SetUp() override {
    CatalogRecoveryTest::SetUp();
    if (!FaultInjectionCompiledIn()) {
      GTEST_SKIP() << "built without XVR_FAULTS";
    }
  }
  static void Arm(const char* point, uint64_t max_fires = 0) {
    FaultSpec spec;
    spec.every_nth = 1;
    spec.max_fires = max_fires;
    FaultInjector::Instance().Arm(point, spec);
  }
};

TEST_F(CatalogWalFaultTest, AppendFaultAbortsTheMutation) {
  Engine engine(TinyDoc());
  ASSERT_TRUE(engine.EnableCatalogWal(wal_).ok());
  ASSERT_TRUE(engine.AddView(Parse(engine, "/r/s/p")).ok());
  const uint64_t version = engine.catalog_version();

  // Unlimited fires: every retry attempt fails, so the mutation must abort
  // without publishing anything.
  Arm("catalog_wal.append");
  auto failed = engine.AddView(Parse(engine, "/r/t/u"));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_EQ(engine.catalog_version(), version);
  EXPECT_EQ(engine.num_views(), 1u);
  Status removed = engine.RemoveView(0);
  EXPECT_EQ(removed.code(), StatusCode::kIoError);
  EXPECT_EQ(engine.num_views(), 1u);
  FaultInjector::Instance().DisarmAll();

  // Transient blip (fail twice, succeed on the third attempt): the append
  // retry absorbs it and the mutation lands.
  Arm("catalog_wal.append", /*max_fires=*/2);
  auto ok = engine.AddView(Parse(engine, "/r/t/u"));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(engine.num_views(), 2u);
  FaultInjector::Instance().DisarmAll();

  // The log only holds published mutations: recovery sees no trace of the
  // aborted one.
  ASSERT_TRUE(engine.SaveState(image_).ok());
  auto recovered = Engine::LoadStateWithWal(image_, wal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->view_ids(), engine.view_ids());
}

TEST_F(CatalogWalFaultTest, ReplayFaultSurfacesAndRetrySucceeds) {
  {
    Engine engine(TinyDoc());
    ASSERT_TRUE(engine.SaveState(image_).ok());
    ASSERT_TRUE(engine.EnableCatalogWal(wal_).ok());
    ASSERT_TRUE(engine.AddView(Parse(engine, "/r/s/p")).ok());
  }
  Arm("catalog_wal.replay");
  auto failed = Engine::LoadStateWithWal(image_, wal_);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  FaultInjector::Instance().DisarmAll();
  // Nothing was consumed: the same recovery now succeeds in full.
  auto recovered = Engine::LoadStateWithWal(image_, wal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->view_ids(), std::vector<int32_t>{0});
  ExpectDifferentialMatch(**recovered, "/r/s/p");
}

TEST_F(CatalogWalFaultTest, TruncateFaultLeavesRecoverableState) {
  Engine engine(TinyDoc());
  ASSERT_TRUE(engine.EnableCatalogWal(wal_).ok());
  ASSERT_TRUE(engine.AddView(Parse(engine, "/r/s/p")).ok());
  ASSERT_TRUE(engine.AddView(Parse(engine, "/r/t/u")).ok());

  Arm("catalog_wal.truncate");
  Status save = engine.SaveState(image_);
  ASSERT_FALSE(save.ok());
  EXPECT_EQ(save.code(), StatusCode::kIoError);
  FaultInjector::Instance().DisarmAll();

  // The image is durable and checkpointed; the stale records left in the
  // log are skipped on replay instead of applying twice.
  auto stale = ReadFileToString(wal_);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(stale->empty());
  auto recovered = Engine::LoadStateWithWal(image_, wal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->view_ids(), engine.view_ids());
  EXPECT_EQ((*recovered)->num_views(), 2u);
  // Fresh mutations on the recovered engine take new ids and sequences.
  auto next = engine.catalog_wal_last_seq();
  EXPECT_EQ((*recovered)->catalog_wal_last_seq(), next);
  ExpectDifferentialMatch(**recovered, "/r/s/p");
}

}  // namespace
}  // namespace xvr
