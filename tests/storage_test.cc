#include <gtest/gtest.h>

#include <cstdio>

#include "pattern/xpath_parser.h"
#include "storage/fragment.h"
#include "storage/fragment_store.h"
#include "storage/kv_store.h"
#include "storage/materializer.h"
#include "xml/xml_parser.h"

namespace xvr {
namespace {

TEST(KvStore, PutGetDelete) {
  KvStore kv;
  kv.Put("a", "1");
  kv.Put("b", "2");
  ASSERT_NE(kv.Get("a"), nullptr);
  EXPECT_EQ(*kv.Get("a"), "1");
  EXPECT_EQ(kv.Get("c"), nullptr);
  EXPECT_TRUE(kv.Delete("a"));
  EXPECT_FALSE(kv.Delete("a"));
  EXPECT_EQ(kv.Get("a"), nullptr);
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, OverwriteUpdatesByteSize) {
  KvStore kv;
  kv.Put("k", "xx");
  const size_t before = kv.ByteSize();
  kv.Put("k", "xxxx");
  EXPECT_EQ(kv.ByteSize(), before + 2);
  kv.Delete("k");
  EXPECT_EQ(kv.ByteSize(), 0u);
}

TEST(KvStore, ScanPrefixInOrder) {
  KvStore kv;
  kv.Put("frag/1/b", "");
  kv.Put("frag/1/a", "");
  kv.Put("frag/2/a", "");
  kv.Put("other", "");
  std::vector<std::string> keys;
  kv.ScanPrefix("frag/1/", [&](const std::string& k, const std::string&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"frag/1/a", "frag/1/b"}));
}

TEST(KvStore, ScanPrefixEarlyStop) {
  KvStore kv;
  kv.Put("p/1", "");
  kv.Put("p/2", "");
  int seen = 0;
  kv.ScanPrefix("p/", [&](const std::string&, const std::string&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1);
}

TEST(KvStore, DeletePrefix) {
  KvStore kv;
  kv.Put("p/1", "x");
  kv.Put("p/2", "y");
  kv.Put("q/1", "z");
  EXPECT_EQ(kv.DeletePrefix("p/"), 2u);
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, SaveLoadRoundTrip) {
  const std::string path = "/tmp/xvr_kv_test.bin";
  KvStore kv;
  kv.Put("alpha", std::string(1000, 'a'));
  kv.Put("beta", "");
  kv.Put("", "empty key is fine");
  ASSERT_TRUE(kv.SaveToFile(path).ok());
  KvStore loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(*loaded.Get("alpha"), std::string(1000, 'a'));
  EXPECT_EQ(*loaded.Get(""), "empty key is fine");
  EXPECT_EQ(loaded.ByteSize(), kv.ByteSize());
  std::remove(path.c_str());
}

TEST(KvStore, LoadRejectsCorruption) {
  const std::string path = "/tmp/xvr_kv_corrupt.bin";
  KvStore kv;
  kv.Put("k", "value");
  ASSERT_TRUE(kv.SaveToFile(path).ok());
  // Flip a byte in the middle.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    std::fputc('!', f);
    std::fclose(f);
  }
  KvStore loaded;
  EXPECT_FALSE(loaded.LoadFromFile(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.LoadFromFile("/tmp/xvr_missing_file.bin").ok());
}

class FragmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = ParseXml(
        "<b><s><t/><f n=\"1\"><i/></f><p>text</p></s>"
        "<s><t/><p/></s></b>");
    ASSERT_TRUE(r.ok()) << r.status();
    tree_ = std::move(r).value();
    tree_.AssignDeweyCodes();
  }
  TreePattern Parse(const std::string& xpath) {
    auto r = ParseXPath(xpath, &tree_.labels());
    EXPECT_TRUE(r.ok()) << xpath << ": " << r.status();
    return std::move(r).value();
  }
  // First s node.
  NodeId FirstS() {
    for (size_t i = 0; i < tree_.size(); ++i) {
      if (tree_.label_name(static_cast<NodeId>(i)) == "s") {
        return static_cast<NodeId>(i);
      }
    }
    return kNullNode;
  }
  XmlTree tree_;
};

TEST_F(FragmentTest, FromTreeCapturesSubtree) {
  const NodeId s = FirstS();
  Fragment frag = Fragment::FromTree(tree_, s);
  EXPECT_EQ(frag.size(), tree_.SubtreeSize(s));
  EXPECT_EQ(frag.root_code(), tree_.dewey(s));
  // Every fragment node's absolute code resolves back to the right node.
  for (size_t i = 0; i < frag.size(); ++i) {
    const DeweyCode code = frag.AbsoluteCode(static_cast<int32_t>(i));
    const NodeId original = tree_.FindByDewey(code);
    ASSERT_NE(original, kNullNode) << code.ToString();
    EXPECT_EQ(tree_.label(original), frag.node(static_cast<int32_t>(i)).label);
  }
}

TEST_F(FragmentTest, CarriesTextAndAttributes) {
  Fragment frag = Fragment::FromTree(tree_, FirstS());
  bool found_text = false;
  bool found_attr = false;
  for (size_t i = 0; i < frag.size(); ++i) {
    if (const std::string* t = frag.text(static_cast<int32_t>(i))) {
      EXPECT_EQ(*t, "text");
      found_text = true;
    }
    if (const std::string* a =
            frag.attribute(static_cast<int32_t>(i), "n")) {
      EXPECT_EQ(*a, "1");
      found_attr = true;
    }
  }
  EXPECT_TRUE(found_text);
  EXPECT_TRUE(found_attr);
}

TEST_F(FragmentTest, AnchoredMatching) {
  Fragment frag = Fragment::FromTree(tree_, FirstS());
  EXPECT_TRUE(frag.MatchesAnchored(Parse("s[t]/p")));
  EXPECT_TRUE(frag.MatchesAnchored(Parse("s[f/i]")));
  EXPECT_TRUE(frag.MatchesAnchored(Parse("s[.//i]")));
  EXPECT_TRUE(frag.MatchesAnchored(Parse("*[t]")));
  EXPECT_FALSE(frag.MatchesAnchored(Parse("s/x")));
  EXPECT_FALSE(frag.MatchesAnchored(Parse("t")));  // root label mismatch
  EXPECT_FALSE(frag.MatchesAnchored(Parse("s/i")));  // i is not a child
}

TEST_F(FragmentTest, AnchoredValuePredicates) {
  Fragment frag = Fragment::FromTree(tree_, FirstS());
  EXPECT_TRUE(frag.MatchesAnchored(Parse("s/f[@n = 1]")));
  EXPECT_FALSE(frag.MatchesAnchored(Parse("s/f[@n = 2]")));
}

TEST_F(FragmentTest, AnchoredEvaluation) {
  Fragment frag = Fragment::FromTree(tree_, FirstS());
  const auto ps = frag.EvaluateAnchored(Parse("s[t]/p"));
  ASSERT_EQ(ps.size(), 1u);
  EXPECT_EQ(frag.node(ps[0]).label, tree_.labels().Find("p"));
  const auto is = frag.EvaluateAnchored(Parse("s//i"));
  ASSERT_EQ(is.size(), 1u);
  EXPECT_EQ(frag.node(is[0]).label, tree_.labels().Find("i"));
  EXPECT_TRUE(frag.EvaluateAnchored(Parse("s/q")).empty());
}

TEST_F(FragmentTest, SerializeRoundTrip) {
  Fragment frag = Fragment::FromTree(tree_, FirstS());
  const std::string bytes = frag.Serialize();
  auto restored = Fragment::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), frag.size());
  EXPECT_EQ(restored->root_code(), frag.root_code());
  for (size_t i = 0; i < frag.size(); ++i) {
    EXPECT_EQ(restored->node(static_cast<int32_t>(i)).label,
              frag.node(static_cast<int32_t>(i)).label);
    EXPECT_EQ(restored->AbsoluteCode(static_cast<int32_t>(i)),
              frag.AbsoluteCode(static_cast<int32_t>(i)));
  }
  EXPECT_TRUE(restored->MatchesAnchored(Parse("s[t]/p")));
  EXPECT_FALSE(Fragment::Deserialize(bytes.substr(0, 7)).ok());
}

TEST_F(FragmentTest, ToXmlParsesBack) {
  Fragment frag = Fragment::FromTree(tree_, FirstS());
  const std::string xml = frag.ToXml(tree_.labels());
  auto reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok()) << xml;
  EXPECT_EQ(reparsed->size(), frag.size());
}

TEST_F(FragmentTest, MaterializeView) {
  const TreePattern view = Parse("/b/s[t]/p");
  auto fragments = MaterializeView(view, tree_);
  ASSERT_TRUE(fragments.ok()) << fragments.status();
  EXPECT_EQ(fragments->size(), 2u);  // both s's have t and p
  // Fragments sorted in document order by the store.
  FragmentStore store;
  store.PutView(0, std::move(fragments).value());
  const auto* frags = store.GetView(0);
  ASSERT_NE(frags, nullptr);
  EXPECT_TRUE((*frags)[0].root_code() < (*frags)[1].root_code());
}

TEST_F(FragmentTest, MaterializeEmptyViewFails) {
  auto fragments = MaterializeView(Parse("/b/x"), tree_);
  EXPECT_EQ(fragments.status().code(), StatusCode::kNotFound);
}

TEST_F(FragmentTest, MaterializeRespectsCap) {
  MaterializeOptions options;
  options.max_bytes_per_view = 10;  // absurdly small
  auto fragments = MaterializeView(Parse("//s"), tree_, options);
  EXPECT_EQ(fragments.status().code(), StatusCode::kCapacityExceeded);
}

TEST_F(FragmentTest, FragmentStorePersistence) {
  FragmentStore store;
  auto f1 = MaterializeView(Parse("//s/p"), tree_);
  auto f2 = MaterializeView(Parse("//f"), tree_);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  store.PutView(3, std::move(f1).value());
  store.PutView(9, std::move(f2).value());
  EXPECT_TRUE(store.HasView(3));
  EXPECT_GT(store.ViewByteSize(3), 0u);
  EXPECT_EQ(store.ViewByteSize(42), 0u);
  EXPECT_GT(store.TotalByteSize(), 0u);

  KvStore kv;
  ASSERT_TRUE(store.SaveTo(&kv).ok());
  FragmentStore loaded;
  ASSERT_TRUE(loaded.LoadFrom(kv).ok());
  EXPECT_EQ(loaded.num_views(), 2u);
  ASSERT_NE(loaded.GetView(3), nullptr);
  EXPECT_EQ(loaded.GetView(3)->size(), store.GetView(3)->size());
  EXPECT_EQ(loaded.TotalByteSize(), store.TotalByteSize());

  loaded.RemoveView(3);
  EXPECT_FALSE(loaded.HasView(3));
}

}  // namespace
}  // namespace xvr
