#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/engine.h"
#include "exec/evaluator.h"
#include "pattern/evaluate.h"
#include "pattern/pattern_writer.h"
#include "pattern/xpath_parser.h"
#include "workload/query_gen.h"
#include "workload/xmark.h"
#include "xml/xml_parser.h"

namespace xvr {
namespace {

class TjFastTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = ParseXml(
        "<b>"
        "<s><t/><f n=\"1\"><i/></f><p/></s>"
        "<s><t/><p/><s><t/><p/><f n=\"2\"><i/></f></s></s>"
        "<a/><a/>"
        "</b>");
    ASSERT_TRUE(r.ok()) << r.status();
    tree_ = std::move(r).value();
    tree_.AssignDeweyCodes();
    index_ = std::make_unique<NodeIndex>(tree_);
    eval_ = std::make_unique<TjFastEvaluator>(tree_, *index_);
  }
  TreePattern Parse(const std::string& xpath) {
    auto r = ParseXPath(xpath, &tree_.labels());
    EXPECT_TRUE(r.ok()) << xpath << ": " << r.status();
    return std::move(r).value();
  }
  void ExpectAgrees(const std::string& xpath) {
    const TreePattern p = Parse(xpath);
    EXPECT_EQ(eval_->Evaluate(p), EvaluatePattern(p, tree_)) << xpath;
  }
  XmlTree tree_;
  std::unique_ptr<NodeIndex> index_;
  std::unique_ptr<TjFastEvaluator> eval_;
};

TEST_F(TjFastTest, SinglePathQueries) {
  ExpectAgrees("/b/s");
  ExpectAgrees("//s//t");
  ExpectAgrees("/b/s/s/t");
  ExpectAgrees("//f/i");
  ExpectAgrees("/b/*");
  ExpectAgrees("/x");
}

TEST_F(TjFastTest, TwigQueries) {
  ExpectAgrees("/b/s[t]/p");
  ExpectAgrees("//s[f/i][t]/p");
  ExpectAgrees("/b[a]/s//p");
  ExpectAgrees("//s[p]");
  ExpectAgrees("//s[x]");
}

TEST_F(TjFastTest, AnswerAtInternalNode) {
  // The answer node has children (predicates): it is internal to the path.
  ExpectAgrees("//s[t][p]");
  ExpectAgrees("/b/s[f]");
}

TEST_F(TjFastTest, ValuePredicates) {
  ExpectAgrees("//f[@n = 2]/i");
  ExpectAgrees("//s[f[@n = 1]]/p");
  ExpectAgrees("//f[@n = 3]");
}

TEST_F(TjFastTest, WildcardLeaves) {
  ExpectAgrees("/b/s/*");
  ExpectAgrees("//s[*]/p");
}

TEST_F(TjFastTest, RepeatedLabelsNested) {
  // Nested s's exercise ambiguous prefix assignments.
  ExpectAgrees("//s/s");
  ExpectAgrees("//s[s]/t");
  ExpectAgrees("//s//s//f");
}

TEST(TjFastSweep, AgreesWithDirectOnXmark) {
  XmarkOptions doc_options;
  doc_options.scale = 0.12;
  doc_options.seed = 23;
  XmlTree tree = GenerateXmark(doc_options);
  NodeIndex index(tree);
  TjFastEvaluator tjfast(tree, index);
  QueryGenOptions gen;
  gen.max_depth = 4;
  gen.num_pred = 2;
  gen.num_nestedpath = 2;
  gen.prob_attr = 0.2;
  QueryGenerator generator(tree, gen);
  Rng rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    const TreePattern q = generator.Generate(&rng);
    EXPECT_EQ(tjfast.Evaluate(q), EvaluatePattern(q, tree))
        << PatternToXPath(q, tree.labels());
  }
}

TEST(TjFastEngine, StrategyWiredThrough) {
  XmarkOptions doc_options;
  doc_options.scale = 0.1;
  Engine engine(GenerateXmark(doc_options));
  auto q = engine.Parse("/site/people/person[profile]/name");
  ASSERT_TRUE(q.ok());
  auto bt = engine.AnswerQuery(*q, AnswerStrategy::kBaseTjfast);
  auto bn = engine.AnswerQuery(*q, AnswerStrategy::kBaseNodeIndex);
  ASSERT_TRUE(bt.ok());
  ASSERT_TRUE(bn.ok());
  EXPECT_EQ(bt->codes, bn->codes);
  EXPECT_FALSE(bt->codes.empty());
  EXPECT_STREQ(AnswerStrategyName(AnswerStrategy::kBaseTjfast), "BT");
}

}  // namespace
}  // namespace xvr
