#include <gtest/gtest.h>

#include "pattern/xpath_parser.h"
#include "storage/kv_store.h"
#include "vfilter/vfilter.h"
#include "vfilter/vfilter_serde.h"

namespace xvr {
namespace {

class VFilterSerdeTest : public ::testing::Test {
 protected:
  TreePattern Parse(const std::string& xpath) {
    auto r = ParseXPath(xpath, &dict_);
    EXPECT_TRUE(r.ok()) << xpath << ": " << r.status();
    return std::move(r).value();
  }
  LabelDict dict_;
};

TEST_F(VFilterSerdeTest, RoundTripPreservesFiltering) {
  VFilter filter;
  const std::vector<std::string> views = {"/s[t]/p", "/s[.//f]/p", "//s/p",
                                          "/s[p]/f//i", "/s/*/t"};
  for (size_t i = 0; i < views.size(); ++i) {
    filter.AddView(static_cast<int32_t>(i), Parse(views[i]));
  }
  const std::string image = SerializeVFilter(filter);
  EXPECT_EQ(image.size(), SerializedVFilterSize(filter));
  auto restored = DeserializeVFilter(image);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_views(), filter.num_views());
  EXPECT_EQ(restored->num_states(), filter.num_states());
  EXPECT_EQ(restored->num_transitions(), filter.num_transitions());

  for (const char* q :
       {"/s[f//i][t]/p", "/s/p", "/s/a/t", "//s/p/x", "/s[t][p]"}) {
    const TreePattern query = Parse(q);
    EXPECT_EQ(filter.Filter(query).candidates,
              restored->Filter(query).candidates)
        << q;
  }
}

TEST_F(VFilterSerdeTest, RoundTripPreservesOptions) {
  VFilterOptions options;
  options.normalize = false;
  options.counter_mode = true;
  VFilter filter(options);
  filter.AddView(0, Parse("/a/b"));
  auto restored = DeserializeVFilter(SerializeVFilter(filter));
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->options().normalize);
  EXPECT_TRUE(restored->options().counter_mode);
  EXPECT_TRUE(restored->options().share_prefixes);
}

TEST_F(VFilterSerdeTest, RejectsCorruptImages) {
  VFilter filter;
  filter.AddView(0, Parse("/a/b"));
  std::string image = SerializeVFilter(filter);
  EXPECT_FALSE(DeserializeVFilter("").ok());
  EXPECT_FALSE(DeserializeVFilter("garbage").ok());
  std::string truncated = image.substr(0, image.size() / 2);
  EXPECT_FALSE(DeserializeVFilter(truncated).ok());
  std::string bad_magic = image;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DeserializeVFilter(bad_magic).ok());
}

TEST_F(VFilterSerdeTest, SizeGrowsSubLinearlyWithSharedPrefixes) {
  // Views sharing a long common prefix: doubling the view count should far
  // less than double the image (the Fig. 11 effect).
  auto build = [&](int n) {
    VFilter filter;
    for (int i = 0; i < n; ++i) {
      filter.AddView(i, Parse("/site/regions/africa/item/name" +
                              std::string(i % 2 == 0 ? "" : "/x" +
                                                               std::to_string(
                                                                   i))));
    }
    return SerializedVFilterSize(filter);
  };
  const size_t s1 = build(10);
  const size_t s2 = build(20);
  EXPECT_LT(static_cast<double>(s2),
            1.9 * static_cast<double>(s1));
}

TEST_F(VFilterSerdeTest, StoresInKvStore) {
  VFilter filter;
  filter.AddView(7, Parse("/a[b]//c"));
  KvStore kv;
  kv.Put("vfilter/main", SerializeVFilter(filter));
  const std::string* loaded = kv.Get("vfilter/main");
  ASSERT_NE(loaded, nullptr);
  auto restored = DeserializeVFilter(*loaded);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumPathsOf(7), 2);
}

}  // namespace
}  // namespace xvr
