#include <gtest/gtest.h>

#include <algorithm>

#include "pattern/homomorphism.h"
#include "pattern/xpath_parser.h"
#include "vfilter/vfilter.h"

namespace xvr {
namespace {

class VFilterTest : public ::testing::Test {
 protected:
  TreePattern Parse(const std::string& xpath) {
    auto r = ParseXPath(xpath, &dict_);
    EXPECT_TRUE(r.ok()) << xpath << ": " << r.status();
    return std::move(r).value();
  }
  // Builds a filter over the given views (ids = positions).
  VFilter Build(const std::vector<std::string>& views,
                VFilterOptions options = {}) {
    VFilter filter(options);
    for (size_t i = 0; i < views.size(); ++i) {
      filter.AddView(static_cast<int32_t>(i), Parse(views[i]));
    }
    return filter;
  }
  static bool Has(const FilterResult& result, int32_t id) {
    return std::find(result.candidates.begin(), result.candidates.end(),
                     id) != result.candidates.end();
  }
  LabelDict dict_;
};

// The paper's Table I view set; Example 3.4 query s[f//i][t]/p selects V1
// (s[t]/p) and V4 (s[p]/f) as candidates.
TEST_F(VFilterTest, PaperExample34) {
  VFilter filter = Build({
      "/s[t]/p",        // V1: paths s/t, s/p
      "/s[.//f]/p",     // V2: paths s//f, s/p
      "//s/p",          // V3: path //s/p
      "/s[p]/f//i",     // V4: paths s/p, s/f//i
  });
  const FilterResult result = filter.Filter(Parse("/s[f//i][t]/p"));
  EXPECT_TRUE(Has(result, 0));   // V1: both paths contain query paths
  EXPECT_TRUE(Has(result, 3));   // V4
  // V3 (//s/p): its only path contains s/p -> candidate as well.
  EXPECT_TRUE(Has(result, 2));
  // V2's s//f path contains s/f//i, and s/p contains s/p -> candidate.
  EXPECT_TRUE(Has(result, 1));
}

TEST_F(VFilterTest, FiltersViewsWithUnmatchedPaths) {
  VFilter filter = Build({
      "/s[x]/p",  // x never appears in the query
      "/s/p",
  });
  const FilterResult result = filter.Filter(Parse("/s[t]/p"));
  EXPECT_FALSE(Has(result, 0));
  EXPECT_TRUE(Has(result, 1));
}

TEST_F(VFilterTest, DescendantViewPathAbsorbsQuerySteps) {
  VFilter filter = Build({"//p", "/s//p", "/s/p", "/x//p"});
  const FilterResult result = filter.Filter(Parse("/s/a/p"));
  EXPECT_TRUE(Has(result, 0));
  EXPECT_TRUE(Has(result, 1));
  EXPECT_FALSE(Has(result, 2));  // /s/p does not contain /s/a/p
  EXPECT_FALSE(Has(result, 3));
}

TEST_F(VFilterTest, TrailingSelfLoopAcceptsLongerQueries) {
  VFilter filter = Build({"/s/p"});
  EXPECT_TRUE(Has(filter.Filter(Parse("/s/p/q/r")), 0));
  EXPECT_TRUE(Has(filter.Filter(Parse("/s/p//q")), 0));
  EXPECT_FALSE(Has(filter.Filter(Parse("/s/q")), 0));
}

TEST_F(VFilterTest, WildcardViewSteps) {
  VFilter filter = Build({"/s/*/p", "/s/*"});
  EXPECT_TRUE(Has(filter.Filter(Parse("/s/a/p")), 0));
  EXPECT_TRUE(Has(filter.Filter(Parse("/s/*/p")), 0));
  // /s//p is not contained in /s/*/p (p may be a direct child).
  EXPECT_FALSE(Has(filter.Filter(Parse("/s//p")), 0));
  EXPECT_TRUE(Has(filter.Filter(Parse("/s/a")), 1));
}

TEST_F(VFilterTest, HashTokenOnlyAbsorbedByLoops) {
  VFilter filter = Build({"/s/p", "/s//p"});
  const FilterResult result = filter.Filter(Parse("/s//p"));
  EXPECT_FALSE(Has(result, 0));
  EXPECT_TRUE(Has(result, 1));
}

TEST_F(VFilterTest, NormalizationEliminatesFalseNegatives) {
  // Example 3.2/3.3: view s//*/t must accept query s/*//t.
  VFilter filter = Build({"/s//*/t"});
  EXPECT_TRUE(Has(filter.Filter(Parse("/s/*//t")), 0));

  // Without normalization the equivalent query is over-filtered.
  VFilterOptions no_norm;
  no_norm.normalize = false;
  VFilter raw = Build({"/s//*/t"}, no_norm);
  EXPECT_FALSE(Has(raw.Filter(Parse("/s/*//t")), 0));
}

TEST_F(VFilterTest, RawReadCatchesPrefixContainmentThroughNormalization) {
  // Query /site/*[.//*/*]: its only root-to-leaf path site/*//*/*
  // normalizes to site//*/*/*, which the short view /site[*]/* no longer
  // matches by homomorphism — the raw read must keep the view.
  VFilter filter = Build({"/site[*]/*"});
  EXPECT_TRUE(Has(filter.Filter(Parse("/site/*[.//*/*]")), 0));
}

TEST_F(VFilterTest, RawInsertCatchesViewNormalizationGap) {
  // View /site/*[.//*] has the single path site/*//*, normalized to
  // site//*/* whose two wildcards become adjacent; the query
  // /site/regions[.//to] (path site/regions//to) only matches the raw
  // form.
  VFilter filter = Build({"/site/*[.//*]"});
  EXPECT_TRUE(Has(filter.Filter(Parse("/site/regions[.//to]")), 0));
}

TEST_F(VFilterTest, RootAnchorSemantics) {
  VFilter filter = Build({"/a/b", "//a/b", "//b"});
  // Query //a/b: not contained in /a/b.
  const FilterResult r1 = filter.Filter(Parse("//a/b"));
  EXPECT_FALSE(Has(r1, 0));
  EXPECT_TRUE(Has(r1, 1));
  EXPECT_TRUE(Has(r1, 2));
  // Query /a/b contained in all three.
  const FilterResult r2 = filter.Filter(Parse("/a/b"));
  EXPECT_TRUE(Has(r2, 0));
  EXPECT_TRUE(Has(r2, 1));
  EXPECT_TRUE(Has(r2, 2));
}

TEST_F(VFilterTest, ListsSortedByLengthDescending) {
  VFilter filter = Build({"//p", "/s//p", "/s/a/p"});
  const FilterResult result = filter.Filter(Parse("/s/a/p"));
  ASSERT_EQ(result.decomposition.paths.size(), 1u);
  const auto& list = result.lists[0];
  ASSERT_GE(list.size(), 3u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list[i - 1].length, list[i].length);
  }
  EXPECT_EQ(list[0].length, 3);  // /s/a/p itself
}

TEST_F(VFilterTest, ListsContainOnlyCandidates) {
  VFilter filter = Build({"/s[x]/p", "/s/p"});
  const FilterResult result = filter.Filter(Parse("/s[t]/p"));
  for (const auto& list : result.lists) {
    for (const auto& entry : list) {
      EXPECT_TRUE(Has(result, entry.view_id));
    }
  }
}

TEST_F(VFilterTest, RemoveViewStopsMatching) {
  VFilter filter = Build({"/s/p", "/s//p"});
  EXPECT_TRUE(Has(filter.Filter(Parse("/s/p")), 0));
  filter.RemoveView(0);
  EXPECT_FALSE(Has(filter.Filter(Parse("/s/p")), 0));
  EXPECT_TRUE(Has(filter.Filter(Parse("/s/p")), 1));
  EXPECT_EQ(filter.num_views(), 1u);
}

TEST_F(VFilterTest, PrefixSharingShrinksAutomaton) {
  const std::vector<std::string> views = {"/s/a/b", "/s/a/c", "/s/a/d",
                                          "/s/b/a", "/s/b/c"};
  VFilter shared = Build(views);
  VFilterOptions unshared_options;
  unshared_options.share_prefixes = false;
  VFilter unshared = Build(views, unshared_options);
  EXPECT_LT(shared.num_states(), unshared.num_states());
  // Same filtering behaviour regardless.
  for (const char* q : {"/s/a/b", "/s/b/c", "/s/a/x"}) {
    EXPECT_EQ(shared.Filter(Parse(q)).candidates,
              unshared.Filter(Parse(q)).candidates)
        << q;
  }
}

TEST_F(VFilterTest, NoFalseNegativesAgainstHomomorphism) {
  // Any view with a homomorphism to the query must be a candidate.
  const std::vector<std::string> views = {
      "/s[t]/p",  "/s[.//f]/p", "//s/p",    "/s[p]/f//i", "//s//*",
      "/s/*[t]",  "//f/i",      "/s[t][p]", "//s[f]/p",   "/s//p[q]",
  };
  VFilter filter = Build(views);
  const std::vector<std::string> queries = {
      "/s[f/i][t]/p", "/s[f//i][t]/p", "/s/f/i", "//s[t]/p/q",
      "/s[t][f]/p",   "/s/s[t]/p",
  };
  for (const std::string& qx : queries) {
    const TreePattern q = Parse(qx);
    const FilterResult result = filter.Filter(q);
    for (size_t i = 0; i < views.size(); ++i) {
      if (ExistsHomomorphism(Parse(views[i]), q)) {
        EXPECT_TRUE(Has(result, static_cast<int32_t>(i)))
            << "view " << views[i] << " dropped for query " << qx;
      }
    }
  }
}

TEST_F(VFilterTest, StatisticsExposed) {
  VFilter filter = Build({"/s[t]/p", "/s//f"});
  EXPECT_EQ(filter.num_views(), 2u);
  EXPECT_GT(filter.num_states(), 3u);
  EXPECT_GT(filter.num_transitions(), 3u);
  EXPECT_EQ(filter.NumPathsOf(0), 2);
  EXPECT_EQ(filter.NumPathsOf(1), 1);
  EXPECT_EQ(filter.NumPathsOf(99), -1);
}

TEST_F(VFilterTest, CounterModeMatchesSetModeOnSimpleWorkloads) {
  const std::vector<std::string> views = {"/s[t]/p", "//s/p", "/s[p]/f"};
  VFilter set_mode = Build(views);
  VFilterOptions counter_options;
  counter_options.counter_mode = true;
  VFilter counter_mode = Build(views, counter_options);
  for (const char* q : {"/s[t]/p", "/s[f]/p", "/s/p"}) {
    EXPECT_EQ(set_mode.Filter(Parse(q)).candidates,
              counter_mode.Filter(Parse(q)).candidates)
        << q;
  }
}

}  // namespace
}  // namespace xvr
