#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/random.h"
#include "pattern/evaluate.h"
#include "pattern/pattern_writer.h"
#include "pattern/xpath_parser.h"
#include "workload/query_gen.h"
#include "workload/workloads.h"
#include "workload/xmark.h"

namespace xvr {
namespace {

TEST(Xmark, DeterministicForSeed) {
  XmarkOptions options;
  options.scale = 0.1;
  XmlTree a = GenerateXmark(options);
  XmlTree b = GenerateXmark(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label_name(static_cast<NodeId>(i)),
              b.label_name(static_cast<NodeId>(i)));
  }
}

TEST(Xmark, DifferentSeedsDiffer) {
  XmarkOptions a_options;
  a_options.scale = 0.1;
  XmarkOptions b_options = a_options;
  b_options.seed = 43;
  EXPECT_NE(GenerateXmark(a_options).size(),
            GenerateXmark(b_options).size());
}

TEST(Xmark, ScaleGrowsDocument) {
  XmarkOptions small;
  small.scale = 0.1;
  XmarkOptions big;
  big.scale = 1.0;
  EXPECT_GT(GenerateXmark(big).size(), 4 * GenerateXmark(small).size());
}

TEST(Xmark, HasExpectedStructure) {
  XmarkOptions options;
  options.scale = 0.2;
  XmlTree tree = GenerateXmark(options);
  ASSERT_EQ(tree.label_name(tree.root()), "site");
  std::set<std::string> top;
  for (NodeId c : tree.Children(tree.root())) {
    top.insert(tree.label_name(c));
  }
  EXPECT_EQ(top, (std::set<std::string>{"regions", "people", "open_auctions",
                                        "closed_auctions", "categories"}));
  // Each Table III query must be non-empty on the default document.
  for (const TableIIIQuery& tq : TableIII()) {
    auto q = ParseXPath(tq.xpath, &tree.labels());
    ASSERT_TRUE(q.ok()) << tq.xpath;
    EXPECT_FALSE(EvaluatePattern(*q, tree).empty()) << tq.xpath;
    for (const std::string& vx : tq.companion_views) {
      auto v = ParseXPath(vx, &tree.labels());
      ASSERT_TRUE(v.ok()) << vx;
      EXPECT_FALSE(EvaluatePattern(*v, tree).empty()) << vx;
    }
  }
}

TEST(Xmark, DeweyAssigned) {
  XmarkOptions options;
  options.scale = 0.05;
  XmlTree tree = GenerateXmark(options);
  EXPECT_TRUE(tree.has_dewey());
  EXPECT_NE(tree.fst(), nullptr);
}

TEST(QueryGen, RespectsMaxDepth) {
  XmarkOptions doc_options;
  doc_options.scale = 0.05;
  XmlTree tree = GenerateXmark(doc_options);
  QueryGenOptions options;
  options.max_depth = 3;
  options.num_pred = 0;
  QueryGenerator generator(tree, options);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const TreePattern q = generator.Generate(&rng);
    EXPECT_LE(q.size(), 3u);
    EXPECT_TRUE(q.IsPath());
  }
}

TEST(QueryGen, PredicatesAddBranches) {
  XmarkOptions doc_options;
  doc_options.scale = 0.05;
  XmlTree tree = GenerateXmark(doc_options);
  QueryGenOptions options;
  options.max_depth = 4;
  options.num_pred = 2;
  options.num_nestedpath = 2;
  QueryGenerator generator(tree, options);
  Rng rng(5);
  int branched = 0;
  for (int i = 0; i < 100; ++i) {
    if (!generator.Generate(&rng).IsPath()) {
      ++branched;
    }
  }
  EXPECT_GT(branched, 50);
}

TEST(QueryGen, KnobsControlAxesAndWildcards) {
  XmarkOptions doc_options;
  doc_options.scale = 0.05;
  XmlTree tree = GenerateXmark(doc_options);
  QueryGenOptions plain;
  plain.prob_wild = 0.0;
  plain.prob_desc = 0.0;
  plain.num_pred = 0;
  QueryGenerator generator(tree, plain);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const TreePattern q = generator.Generate(&rng);
    for (size_t n = 0; n < q.size(); ++n) {
      EXPECT_NE(q.label(static_cast<TreePattern::NodeIndex>(n)),
                kWildcardLabel);
      EXPECT_EQ(q.axis(static_cast<TreePattern::NodeIndex>(n)), Axis::kChild);
    }
  }
}

TEST(QueryGen, SchemaWalksAreMostlyPositive) {
  XmarkOptions doc_options;
  doc_options.scale = 0.1;
  XmlTree tree = GenerateXmark(doc_options);
  QueryGenOptions options;  // defaults mirror the paper
  QueryGenerator generator(tree, options);
  Rng rng(5);
  int positive = 0;
  const int total = 60;
  for (int i = 0; i < total; ++i) {
    if (!EvaluatePattern(generator.Generate(&rng), tree).empty()) {
      ++positive;
    }
  }
  EXPECT_GT(positive, total / 2);
}

TEST(QueryGen, GenerateAcceptedDedupsAndFilters) {
  XmarkOptions doc_options;
  doc_options.scale = 0.05;
  XmlTree tree = GenerateXmark(doc_options);
  QueryGenerator generator(tree, {});
  Rng rng(5);
  const auto views = generator.GenerateAccepted(
      50, &rng,
      [&](const TreePattern& q) { return !EvaluatePattern(q, tree).empty(); });
  EXPECT_EQ(views.size(), 50u);
  std::unordered_set<std::string> keys;
  for (const TreePattern& v : views) {
    EXPECT_TRUE(keys.insert(v.CanonicalKey()).second);
    EXPECT_FALSE(EvaluatePattern(v, tree).empty());
  }
}

TEST(Workloads, GenerateViewSetDistinct) {
  XmarkOptions doc_options;
  doc_options.scale = 0.05;
  XmlTree tree = GenerateXmark(doc_options);
  QueryGenOptions options;
  options.num_nestedpath = 2;
  const auto views = GenerateViewSet(tree, 100, options, 9);
  EXPECT_EQ(views.size(), 100u);
  std::unordered_set<std::string> keys;
  for (const TreePattern& v : views) {
    EXPECT_TRUE(keys.insert(v.CanonicalKey()).second);
  }
}

TEST(Workloads, PaperSetupAnswersTableIII) {
  XmarkOptions doc_options;
  doc_options.scale = 0.25;
  PaperSetup setup = BuildPaperSetup(doc_options, 40, 4242);
  ASSERT_EQ(setup.queries.size(), 4u);
  EXPECT_GE(setup.views_materialized, 40u);
  // Every test query must be answerable via HV and agree with BF.
  for (size_t i = 0; i < setup.queries.size(); ++i) {
    auto hv = setup.engine->AnswerQuery(setup.queries[i],
                                        AnswerStrategy::kHeuristicFiltered);
    ASSERT_TRUE(hv.ok()) << setup.query_names[i] << ": " << hv.status();
    auto bf = setup.engine->AnswerQuery(setup.queries[i],
                                        AnswerStrategy::kBaseFullIndex);
    ASSERT_TRUE(bf.ok());
    EXPECT_EQ(hv->codes, bf->codes) << setup.query_names[i];
    EXPECT_FALSE(hv->codes.empty()) << setup.query_names[i];
  }
}

}  // namespace
}  // namespace xvr
