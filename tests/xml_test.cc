#include <gtest/gtest.h>

#include "xml/xml_parser.h"
#include "xml/xml_tree.h"
#include "xml/xml_writer.h"

namespace xvr {
namespace {

TEST(XmlTree, BuildManually) {
  XmlTree t;
  const LabelId a = t.labels().Intern("a");
  const LabelId b = t.labels().Intern("b");
  const NodeId root = t.CreateRoot(a);
  const NodeId c1 = t.AppendChild(root, b);
  const NodeId c2 = t.AppendChild(root, b);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.root(), root);
  EXPECT_EQ(t.node(c1).parent, root);
  EXPECT_EQ(t.node(root).first_child, c1);
  EXPECT_EQ(t.node(c1).next_sibling, c2);
  EXPECT_EQ(t.Children(root), (std::vector<NodeId>{c1, c2}));
  EXPECT_EQ(t.Depth(root), 0);
  EXPECT_EQ(t.Depth(c2), 1);
  EXPECT_TRUE(t.IsAncestor(root, c1));
  EXPECT_FALSE(t.IsAncestor(c1, root));
  EXPECT_TRUE(t.IsAncestorOrSelf(c1, c1));
  EXPECT_EQ(t.SubtreeSize(root), 3u);
  EXPECT_EQ(t.SubtreeSize(c1), 1u);
}

TEST(XmlTree, TextAndAttributes) {
  XmlTree t;
  const NodeId root = t.CreateRoot(t.labels().Intern("a"));
  t.SetText(root, "hello");
  t.AddAttribute(root, "id", "7");
  ASSERT_NE(t.text(root), nullptr);
  EXPECT_EQ(*t.text(root), "hello");
  ASSERT_NE(t.attribute(root, "id"), nullptr);
  EXPECT_EQ(*t.attribute(root, "id"), "7");
  EXPECT_EQ(t.attribute(root, "missing"), nullptr);
}

TEST(XmlParser, ParsesSimpleDocument) {
  auto r = ParseXml("<a><b>hi</b><c x='1'/></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  const XmlTree& t = *r;
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.label_name(t.root()), "a");
  const auto kids = t.Children(t.root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(t.label_name(kids[0]), "b");
  ASSERT_NE(t.text(kids[0]), nullptr);
  EXPECT_EQ(*t.text(kids[0]), "hi");
  ASSERT_NE(t.attribute(kids[1], "x"), nullptr);
  EXPECT_EQ(*t.attribute(kids[1], "x"), "1");
}

TEST(XmlParser, SkipsPrologCommentsAndDoctype) {
  auto r = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE a [ <!ELEMENT a (b)> ]>\n"
      "<!-- comment -->\n"
      "<a><!-- inner --><b/></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 2u);
}

TEST(XmlParser, DecodesEntities) {
  auto r = ParseXml("<a x=\"&lt;&amp;&gt;\">&quot;&apos;&#65;</a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r->attribute(r->root(), "x"), "<&>");
  EXPECT_EQ(*r->text(r->root()), "\"'A");
}

TEST(XmlParser, Cdata) {
  auto r = ParseXml("<a><![CDATA[1 < 2 && 3]]></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r->text(r->root()), "1 < 2 && 3");
}

TEST(XmlParser, RejectsMismatchedTags) {
  EXPECT_EQ(ParseXml("<a><b></a></b>").status().code(),
            StatusCode::kParseError);
}

TEST(XmlParser, RejectsTrailingContent) {
  EXPECT_EQ(ParseXml("<a/><b/>").status().code(), StatusCode::kParseError);
}

TEST(XmlParser, RejectsUnterminated) {
  EXPECT_EQ(ParseXml("<a><b>").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseXml("<a x=>").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseXml("").status().code(), StatusCode::kParseError);
}

TEST(XmlParser, DeeplyNested) {
  std::string doc;
  for (int i = 0; i < 60; ++i) doc += "<n>";
  for (int i = 0; i < 60; ++i) doc += "</n>";
  auto r = ParseXml(doc);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 60u);
}

TEST(XmlWriter, RoundTripsThroughParser) {
  const std::string original =
      "<site><people><person id=\"p0\"><name>bob &amp; co</name>"
      "</person></people><regions/></site>";
  auto parsed = ParseXml(original);
  ASSERT_TRUE(parsed.ok());
  const std::string written = WriteXml(*parsed, parsed->root());
  auto reparsed = ParseXml(written);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << " in " << written;
  EXPECT_EQ(reparsed->size(), parsed->size());
  EXPECT_EQ(WriteXml(*reparsed, reparsed->root()), written);
}

TEST(XmlWriter, EscapesSpecials) {
  XmlTree t;
  const NodeId root = t.CreateRoot(t.labels().Intern("a"));
  t.SetText(root, "x<y&z");
  t.AddAttribute(root, "q", "a\"b'c");
  const std::string out = WriteXml(t, t.root());
  EXPECT_EQ(out, "<a q=\"a&quot;b&apos;c\">x&lt;y&amp;z</a>");
}

TEST(XmlWriter, IndentedOutputParses) {
  auto parsed = ParseXml("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(parsed.ok());
  XmlWriteOptions opt;
  opt.indent = true;
  const std::string out = WriteXml(*parsed, parsed->root(), opt);
  EXPECT_NE(out.find('\n'), std::string::npos);
  auto reparsed = ParseXml(out);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->size(), 4u);
}

TEST(LabelDict, InternIsIdempotent) {
  LabelDict dict;
  const LabelId a = dict.Intern("item");
  EXPECT_EQ(dict.Intern("item"), a);
  EXPECT_EQ(dict.Find("item"), a);
  EXPECT_EQ(dict.Find("absent"), kInvalidLabel);
  EXPECT_EQ(dict.Name(a), "item");
  EXPECT_EQ(dict.Name(kWildcardLabel), "*");
}

}  // namespace
}  // namespace xvr
