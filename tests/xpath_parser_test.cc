#include <gtest/gtest.h>

#include "pattern/pattern_writer.h"
#include "pattern/xpath_parser.h"

namespace xvr {
namespace {

class XPathParserTest : public ::testing::Test {
 protected:
  TreePattern Parse(const std::string& xpath) {
    auto r = ParseXPath(xpath, &dict_);
    EXPECT_TRUE(r.ok()) << xpath << ": " << r.status();
    return std::move(r).value();
  }
  Status ParseError(const std::string& xpath) {
    auto r = ParseXPath(xpath, &dict_);
    EXPECT_FALSE(r.ok()) << xpath;
    return r.status();
  }
  LabelDict dict_;
};

TEST_F(XPathParserTest, SimpleAbsolutePath) {
  TreePattern p = Parse("/a/b/c");
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.axis(p.root()), Axis::kChild);
  EXPECT_EQ(dict_.Name(p.label(p.answer())), "c");
  EXPECT_EQ(p.Depth(p.answer()), 2);
}

TEST_F(XPathParserTest, LeadingSlashOptional) {
  EXPECT_EQ(Parse("a/b").CanonicalKey(), Parse("/a/b").CanonicalKey());
}

TEST_F(XPathParserTest, DescendantAnchor) {
  TreePattern p = Parse("//a/b");
  EXPECT_EQ(p.axis(p.root()), Axis::kDescendant);
}

TEST_F(XPathParserTest, DescendantEdges) {
  TreePattern p = Parse("/a//b");
  const auto b = p.PathFromRoot(p.answer())[1];
  EXPECT_EQ(p.axis(b), Axis::kDescendant);
}

TEST_F(XPathParserTest, Wildcards) {
  TreePattern p = Parse("/a/*/c");
  const auto star = p.PathFromRoot(p.answer())[1];
  EXPECT_EQ(p.label(star), kWildcardLabel);
}

TEST_F(XPathParserTest, BranchPredicates) {
  TreePattern p = Parse("/a[b][c/d]/e");
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.node(p.root()).children.size(), 3u);
  EXPECT_EQ(dict_.Name(p.label(p.answer())), "e");
}

TEST_F(XPathParserTest, NestedPredicates) {
  TreePattern p = Parse("/a[b[c]/d]/e");
  EXPECT_EQ(p.size(), 5u);
  // b has children c and d.
  TreePattern::NodeIndex b = TreePattern::kNoNode;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p.label(static_cast<TreePattern::NodeIndex>(i)) == dict_.Find("b")) {
      b = static_cast<TreePattern::NodeIndex>(i);
    }
  }
  ASSERT_NE(b, TreePattern::kNoNode);
  EXPECT_EQ(p.node(b).children.size(), 2u);
}

TEST_F(XPathParserTest, DotSlashSlashPredicate) {
  TreePattern p = Parse("/a[.//b]/c");
  TreePattern::NodeIndex b = TreePattern::kNoNode;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p.label(static_cast<TreePattern::NodeIndex>(i)) == dict_.Find("b")) {
      b = static_cast<TreePattern::NodeIndex>(i);
    }
  }
  ASSERT_NE(b, TreePattern::kNoNode);
  EXPECT_EQ(p.axis(b), Axis::kDescendant);
}

TEST_F(XPathParserTest, PredicateOnAnswerStep) {
  TreePattern p = Parse("/a/b[c]");
  EXPECT_EQ(dict_.Name(p.label(p.answer())), "b");
  EXPECT_EQ(p.node(p.answer()).children.size(), 1u);
}

TEST_F(XPathParserTest, AttributeComparisons) {
  struct Case {
    const char* xpath;
    ValuePredicate::Op op;
    const char* value;
  };
  const Case cases[] = {
      {"/a[@id = \"x\"]", ValuePredicate::Op::kEq, "x"},
      {"/a[@id != 'y']", ValuePredicate::Op::kNe, "y"},
      {"/a[@n < 10]", ValuePredicate::Op::kLt, "10"},
      {"/a[@n <= 10]", ValuePredicate::Op::kLe, "10"},
      {"/a[@n > 2.5]", ValuePredicate::Op::kGt, "2.5"},
      {"/a[@n >= -3]", ValuePredicate::Op::kGe, "-3"},
  };
  for (const Case& c : cases) {
    TreePattern p = Parse(c.xpath);
    const auto& pred = p.node(p.root()).value_pred;
    ASSERT_TRUE(pred.has_value()) << c.xpath;
    EXPECT_EQ(pred->op, c.op) << c.xpath;
    EXPECT_EQ(pred->value, c.value) << c.xpath;
  }
}

TEST_F(XPathParserTest, WhitespaceTolerated) {
  TreePattern p = Parse("  /a [ b / c ] / d ");
  EXPECT_EQ(p.size(), 4u);
}

TEST_F(XPathParserTest, Errors) {
  EXPECT_EQ(ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseError("/a[").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseError("/a]").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseError("/a/").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseError("/a[@x ~ 3]").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseError("/a[@x = ]").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseError("/a[@x = \"unterminated]").code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseError("/a trailing").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseError("/1abc").code(), StatusCode::kParseError);
}

TEST_F(XPathParserTest, NestingDepthGuard) {
  std::string deep = "/a";
  for (int i = 0; i < 500; ++i) deep += "[b";
  for (int i = 0; i < 500; ++i) deep += "]";
  EXPECT_EQ(ParseError(deep).code(), StatusCode::kParseError);
  // Moderate nesting still parses.
  std::string ok = "/a";
  for (int i = 0; i < 50; ++i) ok += "[b";
  for (int i = 0; i < 50; ++i) ok += "]";
  EXPECT_EQ(Parse(ok).size(), 51u);
}

TEST_F(XPathParserTest, SharedDictionary) {
  TreePattern p1 = Parse("/a/b");
  TreePattern p2 = Parse("/a/c");
  EXPECT_EQ(p1.label(p1.root()), p2.label(p2.root()));
}

TEST_F(XPathParserTest, PaperExampleQuery) {
  // Example 3.4: s[f//i][t]/p.
  TreePattern p = Parse("s[f//i][t]/p");
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(dict_.Name(p.label(p.answer())), "p");
  EXPECT_EQ(p.Leaves().size(), 3u);
}

}  // namespace
}  // namespace xvr
